#!/usr/bin/env python
"""End-to-end placement: traces, the empirical selector, and perf stat.

Puts three analysis tools together the way a performance engineer would:

1. Replay an application *trace* (MLP training) under CPU-only,
   GPU-only and threshold-guided hybrid placement (§III-D's promise,
   made measurable).
2. Train an **empirical selector** from GPU-BLOB sweep data — the
   portable alternative to Chikin et al.'s per-architecture analytical
   models (§II) — and validate it against the model oracle.
3. Reproduce the paper's ``perf stat`` diagnosis of AOCL's serial GEMV
   (0.89 CPUs for SGEMV vs 50.2 for SGEMM, §IV-B).

Run:  python examples/application_placement.py
"""

from __future__ import annotations

from repro import (
    AnalyticBackend,
    Dims,
    Kernel,
    Precision,
    RunConfig,
    make_model,
    run_sweep,
    system_names,
)
from repro.analysis.perfstat import format_report, perf_stat
from repro.analysis.selector import EmpiricalSelector, ModelSelector
from repro.analysis.trace import TraceEvaluator, mlp_training_trace


def trace_study() -> None:
    print("=== MLP training (batch 256, 4 layers, 100 steps): placement")
    trace = mlp_training_trace()
    for system in system_names():
        report = TraceEvaluator(make_model(system)).evaluate(trace)
        offloaded = len(report.offloaded_phases())
        print(f"  {system:12s} cpu-only {report.cpu_only_s:7.2f}s | "
              f"gpu-only {report.gpu_only_s:7.2f}s | "
              f"hybrid {report.hybrid_s:7.2f}s "
              f"({offloaded}/{len(report.placements)} phases on GPU)")
    print()


def selector_study() -> None:
    print("=== Empirical selector trained on sweep data (Isambard-AI)")
    model = make_model("isambard-ai")
    backend = AnalyticBackend(model)
    runs = [
        run_sweep(backend, RunConfig(min_dim=1, max_dim=512, iterations=i,
                                     step=4, precisions=(Precision.SINGLE,),
                                     problem_idents=("square",)))
        for i in (1, 8, 32)
    ]
    selector = EmpiricalSelector().fit(*runs)
    oracle = ModelSelector(model)
    print(f"  trained on {selector.n_points()} measured configurations")
    for dims, iters in ((Dims(20, 20, 20), 1), (Dims(300, 300, 300), 8),
                        (Dims(450, 450, 450), 32)):
        rec = selector.recommend(dims, Precision.SINGLE, iters)
        truth = oracle.recommend(dims, Precision.SINGLE, iters)
        agree = "agrees with" if rec.device is truth.device else "DIFFERS from"
        print(f"  sgemm {dims} x{iters:<3d}: "
              f"{rec.device.value.upper():3s} "
              f"({rec.expected_speedup:4.1f}x, distance "
              f"{rec.confidence_distance:4.2f}) — {agree} the model oracle")
    queries = [(Dims(m, m, m), Precision.SINGLE, i)
               for m in (5, 30, 100, 350) for i in (1, 8, 32)]
    print(f"  oracle agreement over {len(queries)} held-out queries: "
          f"{selector.agreement_with(oracle, queries):.0%}\n")


def perfstat_study() -> None:
    print("=== perf stat on LUMI: the paper's AOCL diagnosis (§IV-B)")
    lumi = make_model("lumi")
    for dims in (Dims(2048, 2048), Dims(2048, 2048, 2048)):
        print(format_report(perf_stat(lumi, dims, Precision.SINGLE, 1000)))
    _ = Kernel  # imported for doc symmetry


if __name__ == "__main__":
    trace_study()
    selector_study()
    perfstat_study()
