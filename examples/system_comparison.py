#!/usr/bin/env python
"""Side-by-side comparison of the paper's three HPC systems.

Regenerates a compact version of Tables III and IV: square GEMM and GEMV
offload thresholds across DAWN (discrete Intel), LUMI (discrete AMD) and
Isambard-AI (GH200 SoC) — then explains each system's behaviour through
the win windows and transfer-paradigm comparisons of §IV.

Run:  python examples/system_comparison.py
"""

from __future__ import annotations

from repro import (
    AnalyticBackend,
    Kernel,
    Precision,
    RunConfig,
    TransferType,
    make_model,
    run_sweep,
    system_names,
)
from repro.analysis.compare import compare_transfers, gpu_win_windows
from repro.core.tables import threshold_table_for_runs

ITERATION_COUNTS = (1, 8, 32)
STEP = 8


def sweep_system(system: str) -> dict[int, object]:
    backend = AnalyticBackend(make_model(system))
    runs = {}
    for iterations in ITERATION_COUNTS:
        config = RunConfig(min_dim=1, max_dim=4096, iterations=iterations,
                           step=STEP, problem_idents=("square",))
        runs[iterations] = run_sweep(backend, config, system_name=system)
    return runs


def main() -> None:
    all_runs = {system: sweep_system(system) for system in system_names()}

    for kernel, label in ((Kernel.GEMM, "square GEMM"),
                          (Kernel.GEMV, "square GEMV")):
        for system in system_names():
            print(threshold_table_for_runs(
                all_runs[system], kernel, "square",
                title=f"\n{system}: {label} offload thresholds (S : D)",
            ))

    print("\n--- Where the GPU wins even without a threshold (GEMV, 1 iter)")
    for system in system_names():
        series = all_runs[system][1].series_for(
            Kernel.GEMV, "square", Precision.DOUBLE
        )
        windows = gpu_win_windows(series, TransferType.ONCE)
        desc = ", ".join(f"{lo}..{hi}" for lo, hi in windows) or "nowhere"
        print(f"  {system:12s} GPU outperforms the CPU at: {desc}")

    print("\n--- Transfer-paradigm ranking at M=N=K≈2048, 32 iterations")
    for system in system_names():
        series = all_runs[system][32].series_for(
            Kernel.GEMM, "square", Precision.SINGLE
        )
        comparisons = compare_transfers(series)
        near = min(comparisons, key=lambda c: abs(c.dims.m - 2048))
        ranked = sorted(near.gflops, key=near.gflops.get, reverse=True)
        print(f"  {system:12s} " + " > ".join(
            f"{t.label} ({near.gflops[t]:,.0f} GF/s)" for t in ranked
        ))


if __name__ == "__main__":
    main()
