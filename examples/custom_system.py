#!/usr/bin/env python
"""Model your own machine and find its offload thresholds.

GPU-BLOB's portability goal extends to the reproduction: a system is
just a :class:`~repro.SystemSpec`.  This example models a hypothetical
workstation (16-core CPU + a PCIe-4 discrete GPU), registers it in the
catalog, sweeps it, and contrasts it with an SoC variant of itself —
showing how interconnect latency alone reshapes the thresholds, the
paper's central SoC observation.

It also demonstrates the *real* measurement mode: the same runner timing
our NumPy kernels on this host's CPU with a wall clock.

Run:  python examples/custom_system.py
"""

from __future__ import annotations

from repro import (
    AnalyticBackend,
    CombinedBackend,
    CpuSocketSpec,
    GpuSpec,
    HostCpuBackend,
    Kernel,
    LinkSpec,
    Precision,
    RunConfig,
    SystemSpec,
    UsmSpec,
    make_model,
    register_system,
    run_sweep,
)
from repro.core.tables import run_summary

WORKSTATION_CPU = CpuSocketSpec(
    name="workstation-16c",
    cores=16,
    freq_ghz=3.0,
    flops_per_cycle_f64=256,  # 16 cores x AVX-512 FMA
    mem_bw_gbs=80.0,
    single_core_mem_bw_gbs=25.0,
    llc_bytes=32 * 2**20,
    cache_bw_gbs=400.0,
    single_core_cache_bw_gbs=60.0,
)

WORKSTATION_GPU = GpuSpec(
    name="workstation-gpu",
    peak_gflops_f64=700.0,       # consumer cards gimp FP64
    peak_gflops_f32=35_000.0,
    mem_bw_gbs=900.0,
)

WORKSTATION = SystemSpec(
    name="workstation",
    cpu=WORKSTATION_CPU,
    gpu=WORKSTATION_GPU,
    link=LinkSpec(name="pcie4-x16", bw_gbs=24.0, latency_s=10.0e-6),
    usm=UsmSpec(),
    cpu_library="openblas",
    gpu_library="cublas",
    cpu_threads=16,
)

# The same silicon as an SoC: identical CPU/GPU, on-package link.
WORKSTATION_SOC = SystemSpec(
    name="workstation-soc",
    cpu=WORKSTATION_CPU,
    gpu=WORKSTATION_GPU,
    link=LinkSpec(name="on-package", bw_gbs=200.0, latency_s=1.0e-6),
    usm=UsmSpec(fault_latency_s=5.0e-6, pages_per_fault=64),
    cpu_library="openblas",
    gpu_library="cublas",
    cpu_threads=16,
)


def main() -> None:
    register_system(WORKSTATION, overwrite=True)
    register_system(WORKSTATION_SOC, overwrite=True)

    config = RunConfig(min_dim=1, max_dim=1024, iterations=8, step=4,
                       precisions=(Precision.SINGLE,),
                       problem_idents=("square",))

    for name in ("workstation", "workstation-soc"):
        result = run_sweep(
            AnalyticBackend(make_model(name)), config, system_name=name
        )
        print(run_summary(result) + "\n")

    print("-> same chips, but the on-package link slashes the thresholds:")
    print("   the paper's SoC conclusion, reproduced on custom hardware.\n")

    # Real mode: wall-clock timing of NumPy BLAS on *this* machine's CPU,
    # paired with the simulated workstation GPU.
    real_config = RunConfig(min_dim=32, max_dim=256, iterations=4, step=16,
                            precisions=(Precision.SINGLE,),
                            kernels=(Kernel.GEMM,),
                            problem_idents=("square",))
    backend = CombinedBackend(
        HostCpuBackend(), AnalyticBackend(make_model("workstation"))
    )
    result = run_sweep(backend, real_config, system_name="this-host+sim-gpu")
    print(run_summary(result))
    print("\n(CPU rows above are real wall-clock measurements on this host.)")


if __name__ == "__main__":
    main()
