#!/usr/bin/env python
"""Quickstart: find the GPU offload threshold of square GEMM on a GH200.

Runs the GPU-BLOB sweep on the simulated Isambard-AI node for two
data-re-use levels, prints the offload-threshold table the benchmark
would print on the real machine, and renders the performance curves.

Run:  python examples/quickstart.py
"""

from __future__ import annotations

from repro import (
    AnalyticBackend,
    Kernel,
    Precision,
    RunConfig,
    TransferType,
    make_model,
    run_sweep,
    threshold_for_series,
)
from repro.analysis.graphs import ascii_plot, performance_curves
from repro.core.tables import run_summary


def main() -> None:
    # 1. Pick a system model ("dawn", "lumi", or "isambard-ai").
    model = make_model("isambard-ai")

    # 2. Configure the sweep: the paper uses -s 1 -d 4096; we stride by 4
    #    to keep this demo quick while still resolving the threshold.
    for iterations in (1, 8):
        config = RunConfig(
            min_dim=1,
            max_dim=512,
            iterations=iterations,
            step=4,
            problem_idents=("square",),
            kernels=(Kernel.GEMM,),
        )

        # 3. Run it: each size executes on the CPU, then on the GPU under
        #    each transfer paradigm, exactly like the C++ benchmark.
        result = run_sweep(
            AnalyticBackend(model), config, system_name="isambard-ai"
        )

        # 4. Thresholds per transfer type, paper-style.
        print(run_summary(result))
        print()

    # 5. Look at the curves behind the numbers.
    series = result.series_for(Kernel.GEMM, "square", Precision.SINGLE)
    print(ascii_plot(performance_curves(series)))

    # 6. Or query one threshold programmatically.
    threshold = threshold_for_series(series, TransferType.ONCE)
    print(
        "\nSquare SGEMM Transfer-Once offload threshold on Isambard-AI "
        f"(i=8): {threshold}"
    )
    print(
        "=> GEMMs at or above this size are guaranteed faster on the GPU,"
        "\n   data movement included."
    )


if __name__ == "__main__":
    main()
