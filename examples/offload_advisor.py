#!/usr/bin/env python
"""Offload advisor: should *your* application's BLAS go to the GPU?

The paper's intended use of the offload threshold (§III-D): relate an
application's matrix shapes to GPU-BLOB's problem types, approximate its
BLAS call count with the iteration parameter, match its data-movement
pattern to a transfer paradigm — and read off whether porting to the GPU
is worth the effort, per target system.

Two workloads from the paper's motivation are analysed:

* **K-means clustering** (Dhillon et al., cited in §III-C): the distance
  computation is a GEMM with M = samples, N = centroids, K = features —
  strongly non-square — re-run every Lloyd iteration on data that stays
  resident (Transfer-Once-like).
* **MLP inference layers** (the AI workloads of §I): a chain of GEMMs
  with M = batch size, N/K = layer widths, executed once per request
  batch with activations bouncing to the host between service steps
  (Transfer-Always-like).

Run:  python examples/offload_advisor.py
"""

from __future__ import annotations

from dataclasses import dataclass

from repro import Dims, Precision, TransferType, make_model, system_names
from repro.core.flops import arithmetic_intensity


@dataclass(frozen=True)
class Workload:
    name: str
    dims: Dims
    precision: Precision
    iterations: int
    transfer: TransferType
    rationale: str


WORKLOADS = (
    Workload(
        name="K-means assignment step (1M points, 64 clusters, 128 features)",
        dims=Dims(m=100_000, n=64, k=128),
        precision=Precision.SINGLE,
        iterations=50,  # Lloyd iterations over resident data
        transfer=TransferType.ONCE,
        rationale="points stay resident across iterations -> Transfer-Once",
    ),
    Workload(
        name="MLP hidden layer (batch 32, 4096 -> 4096)",
        dims=Dims(m=32, n=4096, k=4096),
        precision=Precision.SINGLE,
        iterations=1,  # one call per request batch, host round-trips
        transfer=TransferType.ALWAYS,
        rationale="activations return to the host every step -> Transfer-Always",
    ),
    Workload(
        name="MLP hidden layer (batch 2048, 4096 -> 4096)",
        dims=Dims(m=2048, n=4096, k=4096),
        precision=Precision.SINGLE,
        iterations=1,
        transfer=TransferType.ALWAYS,
        rationale="large training-style batch, still host round-trips",
    ),
    Workload(
        name="Iterative solver GEMV (square A, 3000x3000, 200 iterations)",
        dims=Dims(m=3000, n=3000),
        precision=Precision.DOUBLE,
        iterations=200,
        transfer=TransferType.ONCE,
        rationale="A factorised once, reused every solver iteration",
    ),
)


def main() -> None:
    for workload in WORKLOADS:
        print(f"\n=== {workload.name}")
        print(f"    shape {workload.dims}, {workload.precision.value} "
              f"precision, {workload.iterations} calls, "
              f"{workload.transfer.label} ({workload.rationale})")
        ai = arithmetic_intensity(workload.dims, workload.precision)
        print(f"    arithmetic intensity: {ai:.2f} FLOPs/byte")
        for system in system_names():
            model = make_model(system)
            cpu_s = model.cpu_time(
                workload.dims, workload.precision, workload.iterations
            )
            gpu_s = model.gpu_time(
                workload.dims, workload.precision, workload.iterations,
                workload.transfer,
            )
            speedup = cpu_s / gpu_s
            verdict = (
                f"OFFLOAD ({speedup:.1f}x faster on GPU)"
                if speedup >= 1.1
                else "stay on CPU"
                if speedup <= 0.9
                else "toss-up — profile both"
            )
            print(f"    {system:12s} cpu {cpu_s * 1e3:9.3f} ms | "
                  f"gpu {gpu_s * 1e3:9.3f} ms | {verdict}")


if __name__ == "__main__":
    main()
