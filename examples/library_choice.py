#!/usr/bin/env python
"""BLAS library choice is a performance decision: two paper case studies.

1. **LUMI, AOCL vs OpenBLAS** (§IV-B, Fig. 6): AOCL never parallelizes
   GEMV (the paper measured 0.89 CPUs in use), so LUMI shows low GEMV
   offload thresholds; switching to OpenBLAS removes them entirely.
2. **Isambard, NVPL threading** (§IV-A, Fig. 3): NVPL wakes all 72
   threads for every size, wrecking small-GEMM performance vs ArmPL or a
   single-threaded build — one reason the GH200's thresholds are so low.

Run:  python examples/library_choice.py
"""

from __future__ import annotations

from repro import (
    AnalyticBackend,
    Dims,
    Kernel,
    Precision,
    RunConfig,
    TransferType,
    make_model,
    run_sweep,
    threshold_for_series,
)
from repro.blas.registry import NVPL, get_gpu_library
from repro.sim.perfmodel import NodePerfModel
from repro.systems import ISAMBARD_AI


def lumi_gemv_study() -> None:
    print("=== LUMI square DGEMV, 128 iterations: AOCL vs OpenBLAS")
    config = RunConfig(min_dim=1, max_dim=4096, iterations=128, step=8,
                       precisions=(Precision.DOUBLE,),
                       kernels=(Kernel.GEMV,), problem_idents=("square",))
    for library in ("aocl", "openblas"):
        model = make_model("lumi", cpu_library=library)
        run = run_sweep(AnalyticBackend(model), config, system_name="lumi")
        series = run.series[0]
        threshold = threshold_for_series(series, TransferType.ONCE)
        cpu_peak = max(s.gflops for s in series.cpu_samples())
        print(f"  {library:9s} peak CPU {cpu_peak:8.1f} GFLOP/s | "
              f"Transfer-Once offload threshold: {threshold}")
    print("  -> the vendor library *creates* the offload threshold; the\n"
          "     open-source one removes any reason to use the GPU here.\n")


def isambard_threading_study() -> None:
    print("=== Isambard small square SGEMM: the NVPL threading heuristic")
    gpu_library = get_gpu_library("cublas")
    variants = {
        "NVPL, 72 threads": make_model("isambard-ai"),
        "NVPL, 1 thread": NodePerfModel(
            ISAMBARD_AI, NVPL.with_threads(1), gpu_library
        ),
        "ArmPL, 72 threads": make_model("isambard-ai", cpu_library="armpl"),
    }
    sizes = (16, 32, 64, 128)
    header = "  " + f"{'library':20s}" + "".join(f"  m={m:<6d}" for m in sizes)
    print(header + " (CPU GFLOP/s)")
    for name, model in variants.items():
        cells = "".join(
            f"  {model.cpu_gflops(Dims(m, m, m), Precision.SINGLE, 1):<8.1f}"
            for m in sizes
        )
        print(f"  {name:20s}{cells}")
    print("  -> waking 72 threads for a 32x32 GEMM costs an order of\n"
          "     magnitude; heuristics, not silicon, set the small-size rate.")


if __name__ == "__main__":
    lumi_gemv_study()
    isambard_threading_study()
