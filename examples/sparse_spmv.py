#!/usr/bin/env python
"""Sparse SpMV: should an iterative solver's matrix live on the GPU?

The paper's last future-work item is sparse BLAS support.  This example
uses the sparse extension to answer the question GPU-BLOB answers for
dense kernels, for the sparse kernel every Krylov solver is built on:
given a matrix's size, density and structure, and the solver's iteration
count, which device should hold it?

It also runs the *real* SpMV kernels (CSR, COO, ELL — all implemented in
this repository) on an actual matrix and cross-validates them, GPU-BLOB
checksum style.

Run:  python examples/sparse_spmv.py
"""

from __future__ import annotations

from repro import TransferType, make_model, system_names
from repro.core.checksum import checksum, checksums_match
from repro.sparse import (
    BANDED,
    RANDOM,
    SparseNodeModel,
    SpmvProblem,
    banded_csr,
    make_spmv_operands,
    spmv_coo,
    spmv_csr,
    spmv_ell,
)


def kernel_validation() -> None:
    print("=== Real SpMV kernels on a 2000x2000 pentadiagonal matrix")
    a = banded_csr(2000, 2)
    x, y = make_spmv_operands(a)
    results = {
        "CSR (segmented reduction)": checksum(spmv_csr(a, x, y.copy())),
        "COO (scatter-add)": checksum(spmv_coo(a.to_coo(), x, y.copy())),
        "ELL (padded gather)": checksum(spmv_ell(a.to_ell(), x, y.copy())),
    }
    reference = next(iter(results.values()))
    for name, value in results.items():
        ok = checksums_match(reference, value)
        print(f"  {name:28s} checksum {value:18.8f} "
              f"{'OK' if ok else 'MISMATCH'}")
    print(f"  nnz = {a.nnz:,}, ELL padding = "
          f"{a.to_ell().padding_fraction:.1%}\n")


def solver_advisor() -> None:
    print("=== Where should the solver's matrix live?")
    scenarios = (
        ("CFD pressure solve (stencil, n=100k, 7 nnz/row, 500 iters)",
         SpmvProblem(n=100_000, density=7 / 100_000, pattern=BANDED), 500),
        ("Graph PageRank (random, n=50k, 0.05% dense, 50 iters)",
         SpmvProblem(n=50_000, density=5e-4, pattern=RANDOM), 50),
        ("Small circuit sim (random, n=4k, 0.1% dense, 10k iters)",
         SpmvProblem(n=4_000, density=1e-3, pattern=RANDOM), 10_000),
    )
    for label, problem, iterations in scenarios:
        print(f"\n  {label}")
        for system in system_names():
            sparse = SparseNodeModel(make_model(system))
            cpu_s = sparse.cpu_time(problem, iterations)
            gpu_s = sparse.gpu_time(problem, TransferType.ONCE, iterations)
            needed = sparse.reuse_threshold(problem)
            verdict = "OFFLOAD" if gpu_s < cpu_s else "stay on CPU"
            reuse = f"needs >= {needed} iters" if needed else "never pays"
            print(f"    {system:12s} cpu {cpu_s * 1e3:10.2f} ms | "
                  f"gpu {gpu_s * 1e3:10.2f} ms | {verdict:12s} ({reuse})")


def main() -> int:
    from repro.errors import DeferredFeatureError

    try:  # probe before printing anything, so the notice stands alone
        SparseNodeModel(make_model(system_names()[0]))
    except DeferredFeatureError as exc:
        print("SKIPPED: the sparse extension is deferred in this build.")
        print(f"  ({exc})")
        print("Dense offload advice is available: see "
              "examples/offload_advisor.py")
        return 0
    kernel_validation()
    solver_advisor()
    return 0


if __name__ == "__main__":
    raise SystemExit(main())
